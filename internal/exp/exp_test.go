package exp

import (
	"bytes"
	"fmt"
	"io"
	"strings"
	"testing"
)

// smallSuite shares one scaled-down capture across the package's tests.
var smallSuite *Suite

func suiteForTest(t *testing.T) *Suite {
	t.Helper()
	if smallSuite == nil {
		smallSuite = NewSuite(0.15)
	}
	return smallSuite
}

func TestRegistryComplete(t *testing.T) {
	want := []string{
		"table3", "table4", "fig2a", "fig2b", "fig3a", "fig3b", "fig4a",
		"fig4b", "fig5a", "fig5b", "fig6a", "fig6b", "fig7a", "fig7b",
		"fig9a", "fig9b", "fig10a", "fig10b", "table7", "fig11",
		"sec721", "sec822", "sec83",
		"ext-prefetch", "ext-sharedmem",
		"abl-partition", "abl-broadphase", "abl-iterations", "abl-warmstart",
		"ref-system",
	}
	got := IDs()
	if len(got) != len(want) {
		t.Fatalf("registry has %d experiments, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("experiment %d = %s, want %s", i, got[i], want[i])
		}
	}
	if _, ok := ByID("fig10b"); !ok {
		t.Error("ByID broken")
	}
	if _, ok := ByID("nonsense"); ok {
		t.Error("ByID found nonsense")
	}
}

func TestAllExperimentsProduceOutput(t *testing.T) {
	s := suiteForTest(t)
	for _, e := range Registry {
		var buf bytes.Buffer
		e.Run(s, &buf)
		out := buf.String()
		if len(out) < 40 {
			t.Errorf("%s produced almost no output: %q", e.ID, out)
		}
		if strings.Contains(out, "NaN") || strings.Contains(out, "Inf") {
			t.Errorf("%s output contains NaN/Inf:\n%s", e.ID, out)
		}
	}
}

func TestFig2aEveryBenchmarkListed(t *testing.T) {
	s := suiteForTest(t)
	var buf bytes.Buffer
	s.Fig2a(&buf)
	for _, n := range Names() {
		if !strings.Contains(buf.String(), n) {
			t.Errorf("fig2a missing benchmark %s", n)
		}
	}
}

func TestFig10aShowsAllCores(t *testing.T) {
	s := suiteForTest(t)
	var buf bytes.Buffer
	s.Fig10a(&buf)
	for _, name := range []string{"Desktop", "Console", "Shader", "Limit"} {
		if !strings.Contains(buf.String(), name) {
			t.Errorf("fig10a missing %s:\n%s", name, buf.String())
		}
	}
}

func TestTable7ShowsInterconnects(t *testing.T) {
	s := suiteForTest(t)
	var buf bytes.Buffer
	s.Table7(&buf)
	for _, name := range []string{"On-chip", "HTX", "PCIe"} {
		if !strings.Contains(buf.String(), name) {
			t.Errorf("table7 missing %s", name)
		}
	}
}

func TestNewSuiteOf(t *testing.T) {
	s, err := NewSuiteOf(0.1, "Periodic", "Ragdoll")
	if err != nil {
		t.Fatal(err)
	}
	if got := len(s.Workloads()); got != 2 {
		t.Fatalf("suite of 2 has %d workloads", got)
	}
	if s.byName("Periodic").Name != "Periodic" {
		t.Error("byName broken")
	}
}

func TestNewSuiteOfUnknownName(t *testing.T) {
	_, err := NewSuiteOf(0.1, "Periodic", "NoSuchBench")
	if err == nil {
		t.Fatal("NewSuiteOf accepted an unknown benchmark name")
	}
	if !strings.Contains(err.Error(), "NoSuchBench") || !strings.Contains(err.Error(), "Mix") {
		t.Errorf("error should name the bad benchmark and list valid ones: %v", err)
	}
}

func TestByNameMissingPanics(t *testing.T) {
	s, err := NewSuiteOf(0.1, "Periodic")
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("byName on a missing benchmark must fail loudly, not fall back")
		}
		if msg := fmt.Sprint(r); !strings.Contains(msg, "Missing") || !strings.Contains(msg, "Periodic") {
			t.Errorf("panic should name the missing benchmark and the suite's contents: %v", msg)
		}
	}()
	s.byName("Missing")
}

func TestLazyCapture(t *testing.T) {
	s := NewSuite(0.1)
	if n, _ := s.CaptureStats(); n != 0 {
		t.Fatalf("NewSuite captured %d benchmarks eagerly; capture must be lazy", n)
	}
	s.byName("Periodic")
	if n, _ := s.CaptureStats(); n != 1 {
		t.Fatalf("byName captured %d benchmarks, want exactly 1", n)
	}
	s.byName("Periodic") // memoized: no second capture
	if n, _ := s.CaptureStats(); n != 1 {
		t.Fatalf("repeated byName re-captured: %d captures", n)
	}
	if got := len(s.Workloads()); got != len(Names()) {
		t.Fatalf("Workloads returned %d workloads, want %d", got, len(Names()))
	}
	if n, _ := s.CaptureStats(); n != len(Names()) {
		t.Fatalf("Workloads captured %d benchmarks, want all %d", n, len(Names()))
	}
}

// TestRunIDsUnknown: a bad experiment id is an error listing valid ids.
func TestRunIDsUnknown(t *testing.T) {
	s := NewSuite(0.1)
	err := s.RunIDs(io.Discard, "fig2a", "not-an-experiment")
	if err == nil {
		t.Fatal("RunIDs accepted an unknown experiment id")
	}
	if !strings.Contains(err.Error(), "not-an-experiment") || !strings.Contains(err.Error(), "fig10b") {
		t.Errorf("error should name the bad id and list valid ones: %v", err)
	}
}

// detIDs is the fast experiment subset of the golden determinism test:
// it exercises the shared cgOnly cache from several experiments at
// once, the per-workload pools, the grid sweeps, byName-only
// experiments and the engine-stepping ablations.
var detIDs = []string{
	"table3", "fig2a", "fig2b", "fig5b", "fig6b", "fig10b",
	"abl-partition", "abl-warmstart", "ref-system",
}

// TestParallelOutputDeterministic pins the tentpole invariant: the
// parallel harness emits byte-identical output to a Threads=1 run,
// excluding the "# timing:" lines. Run under -race in CI.
func TestParallelOutputDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	run := func(threads int) string {
		s := NewSuite(0.25)
		s.Threads = threads
		var buf bytes.Buffer
		if err := s.RunIDs(&buf, detIDs...); err != nil {
			t.Fatal(err)
		}
		return StripTimings(buf.String())
	}
	serial := run(1)
	parallel := run(8)
	if serial != parallel {
		t.Fatalf("parallel output differs from serial run:\n--- threads=1 ---\n%s\n--- threads=8 ---\n%s",
			serial, parallel)
	}
	if len(serial) < 400 {
		t.Fatalf("suspiciously small output: %q", serial)
	}
}

func TestStripTimings(t *testing.T) {
	in := "row 1\n# timing: exp=fig2a wall=3ms\nrow 2\n"
	want := "row 1\nrow 2\n"
	if got := StripTimings(in); got != want {
		t.Errorf("StripTimings = %q, want %q", got, want)
	}
}

func TestRunAll(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	s := suiteForTest(t)
	var buf bytes.Buffer
	s.RunAll(&buf)
	for _, e := range Registry {
		if !strings.Contains(buf.String(), "==== "+e.ID) {
			t.Errorf("RunAll missing %s", e.ID)
		}
	}
}
