package exp

import (
	"fmt"
	"io"

	"github.com/parallax-arch/parallax/internal/arch/arbiter"
	"github.com/parallax-arch/parallax/internal/arch/area"
	"github.com/parallax-arch/parallax/internal/arch/cpu"
	"github.com/parallax-arch/parallax/internal/arch/kernels"
	"github.com/parallax-arch/parallax/internal/arch/link"
	"github.com/parallax-arch/parallax/internal/arch/parallax"
	"github.com/parallax-arch/parallax/internal/phys/workload"
	"github.com/parallax-arch/parallax/internal/phys/world"
)

func allBenchmarks() []workload.Benchmark { return workload.All }

func memCfg(threads int) parallax.MemConfig {
	return parallax.MemConfig{
		Cores: threads, L2MB: 12, Partitioned: true, Threads: threads,
		DedicatedPhase: -1,
	}
}

// fgTypes are the realistic FG design points of Fig 10.
var fgTypes = []cpu.Config{cpu.Desktop, cpu.Console, cpu.Shader}

// Fig9a: Mix's execution decomposed into serial, CG-parallel and
// FG-parallel components at 1 core/9MB and 4 cores/12MB.
func (s *Suite) Fig9a(w io.Writer) {
	wl := s.byName("Mix")
	fmt.Fprintf(w, "%-14s %10s %14s %14s %10s\n",
		"Config", "Serial(ms)", "CG coarse(ms)", "FG fine(ms)", "FG share")
	for _, cfg := range []struct {
		cores, l2 int
	}{{1, 9}, {4, 12}} {
		r := s.cgOnly(wl, cfg.cores, cfg.l2, true)
		var cgPart, fgPart float64
		for _, ph := range []world.Phase{world.PhaseNarrow, world.PhaseIslandProc, world.PhaseCloth} {
			cgPart += r.PhaseTime[ph] * (1 - kernels.FGShare(ph))
			fgPart += r.PhaseTime[ph] * kernels.FGShare(ph)
		}
		total := r.Total()
		fmt.Fprintf(w, "%dP + %2dMB     %10.2f %14.2f %14.2f %9.0f%%\n",
			cfg.cores, cfg.l2, r.Serial()*1e3, cgPart*1e3, fgPart*1e3,
			fgPart/total*100)
	}
	r4 := s.cgOnly(wl, 4, 12, true)
	nonFG := r4.Serial()
	for _, ph := range []world.Phase{world.PhaseNarrow, world.PhaseIslandProc, world.PhaseCloth} {
		nonFG += r4.PhaseTime[ph] * (1 - kernels.FGShare(ph))
	}
	fmt.Fprintf(w, "serial + CG components take %.0f%% of one frame's time; %.0f%% remains for FG work\n",
		nonFG/(1.0/30)*100, (1-nonFG/(1.0/30))*100)
}

// Fig9b: instruction mix of the three FG kernels.
func (s *Suite) Fig9b(w io.Writer) {
	fmt.Fprintf(w, "%-18s %8s %8s %8s %8s %8s %8s %8s\n",
		"Kernel", "int alu", "branch", "fp add", "fp mult", "rd port", "wr port", "static")
	for k := kernels.Narrow; k < kernels.NumKernels; k++ {
		m := kernels.Summary(k.Mix())
		fmt.Fprintf(w, "%-18s %7.1f%% %7.1f%% %7.1f%% %7.1f%% %7.1f%% %7.1f%% %8d\n",
			k.String(), m.IntALU*100, m.Branch*100, m.FPAdd*100,
			m.FPMul*100, m.Read*100, m.Write*100, k.StaticSize())
	}
}

// Fig10a: IPC of the four core types on the three kernels, plus the
// ideal-branch-prediction delta on Narrowphase.
func (s *Suite) Fig10a(w io.Writer) {
	wl := s.Workloads()[0]
	fmt.Fprintf(w, "%-10s %14s %14s %14s\n", "Core", "Narrowphase", "Island", "Cloth")
	for _, cfg := range cpu.FGConfigs {
		ipc := wl.KernelIPC(cfg)
		fmt.Fprintf(w, "%-10s %14.2f %14.2f %14.2f\n",
			cfg.Name, ipc[kernels.Narrow], ipc[kernels.Island], ipc[kernels.Cloth])
	}
	// Ideal branch prediction on Narrowphase (paper: ~30% improvement).
	tr := kernels.Narrow.Trace(300, 11)
	real := cpu.New(cpu.Desktop).Run(tr).IPC()
	ideal := cpu.New(cpu.Desktop)
	ideal.PerfectBP = true
	fmt.Fprintf(w, "ideal BP on Narrowphase (desktop): %.2f -> %.2f (%.0f%%)\n",
		real, ideal.Run(tr).IPC(), (ideal.Run(tr).IPC()/real-1)*100)
}

// Fig10b: FG cores required per type for 30 FPS at fixed frame-budget
// fractions and at the simulated budget, plus area and the off-chip
// variants.
func (s *Suite) Fig10b(w io.Writer) {
	wl := s.byName("Mix")
	// The simulated budget: whatever the 4-core CG machine leaves.
	r4 := s.cgOnly(wl, 4, 12, true)
	nonFG := r4.Serial()
	for _, ph := range []world.Phase{world.PhaseNarrow, world.PhaseIslandProc, world.PhaseCloth} {
		nonFG += r4.PhaseTime[ph] * (1 - kernels.FGShare(ph))
	}
	simBudget := 1 - nonFG/(1.0/30)
	if simBudget < 0.02 {
		simBudget = 0.02
	}
	budgets := []struct {
		name string
		frac float64
	}{
		{"100%", 1.0}, {"50%", 0.5}, {"25%", 0.25}, {"12.5%", 0.125},
		{fmt.Sprintf("sim(%.0f%%)", simBudget*100), simBudget},
	}
	// The budget x core-type pool sizing is a binary search per cell;
	// evaluate the grid on the worker pool.
	cells := grid(s, len(budgets), len(fgTypes), func(r, c int) int {
		return wl.FGCoresFor30FPS(fgTypes[c], budgets[r].frac, link.OnChip)
	})
	fmt.Fprintf(w, "%-10s", "Budget")
	for _, t := range fgTypes {
		fmt.Fprintf(w, " %9s", t.Name)
	}
	fmt.Fprintln(w)
	var simCounts []int
	for i, b := range budgets {
		fmt.Fprintf(w, "%-10s", b.name)
		for j := range fgTypes {
			fmt.Fprintf(w, " %9d", cells[i][j])
			// The simulated-budget row is the last table entry by
			// construction; match it by position, not float equality.
			if i == len(budgets)-1 {
				simCounts = append(simCounts, cells[i][j])
			}
		}
		fmt.Fprintln(w)
	}
	if len(simCounts) == len(fgTypes) {
		fmt.Fprintf(w, "area at simulated budget:")
		for i, t := range fgTypes {
			fmt.Fprintf(w, "  %s %.0f mm2", t.Name, area.FGPoolMM2(t, simCounts[i]))
		}
		fmt.Fprintln(w)
	}
	// Off-chip variants for the shader pool.
	fmt.Fprintf(w, "shader cores over HTX: %d, over PCIe: %d\n",
		wl.FGCoresFor30FPS(cpu.Shader, simBudget, link.HTX),
		wl.FGCoresFor30FPS(cpu.Shader, simBudget, link.PCIe))
}

// Table7: tasks required to hide communication latency per core type
// and interconnect, for the pool sizes of Fig 10b.
func (s *Suite) Table7(w io.Writer) {
	wl := s.byName("Mix")
	pool := map[string]int{"Desktop": 30, "Console": 43, "Shader": 150}
	fmt.Fprintf(w, "%-10s %-9s %28s\n", "", "", "(Narrowphase, Island, Cloth)")
	for _, t := range fgTypes {
		ipcs := wl.KernelIPC(t)
		n := pool[t.Name]
		fmt.Fprintf(w, "%-10s", t.Name)
		for _, lk := range []link.Kind{link.OnChip, link.HTX, link.PCIe} {
			lc := link.For(lk)
			var counts [kernels.NumKernels]int
			for k := kernels.Narrow; k < kernels.NumKernels; k++ {
				taskSec := taskTime(wl, k, ipcs[k])
				counts[k] = lc.TasksToHide(taskSec, k.DataIn(), k.DataOut()) * n
			}
			fmt.Fprintf(w, "  %s(%d, %d, %d)", lk, counts[0], counts[1], counts[2])
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintln(w, "2KB of local storage buffers the minimum data in all on-chip cases")
}

// taskTime computes one FG task's compute time for a kernel on a core.
func taskTime(wl *parallax.Workload, k kernels.Kernel, ipc float64) float64 {
	if ipc <= 0 {
		return 0
	}
	return wl.TaskTime(k, ipc)
}

// Fig11: average available fine-grain tasks per benchmark.
func (s *Suite) Fig11(w io.Writer) {
	fmt.Fprintf(w, "%-12s %14s %18s %14s\n",
		"Benchmark", "Object-Pairs", "Island Processing", "Cloth")
	for _, wl := range s.Workloads() {
		p, d, v := wl.AvailableFGTasks()
		fmt.Fprintf(w, "%-12s %14.0f %18.0f %14.0f\n", wl.Name, p, d, v)
	}
}

// Sec721: dynamic hierarchical arbitration vs static mapping — cores
// (and area) needed to finish the FG work of the skewed island load in
// the same deadline.
func (s *Suite) Sec721(w io.Writer) {
	wl := s.byName("Mix")
	ipc := wl.KernelIPC(cpu.Shader)[kernels.Island]
	taskSec := taskTime(wl, kernels.Island, ipc)
	if taskSec <= 0 {
		taskSec = 50e-9
	}
	// Build per-CG queues from the measured island structure: islands
	// are distributed round-robin to 4 CG cores, as the engine does.
	const nCG = 4
	queues := make([][]arbiter.Task, nCG)
	for i, dof := range wl.IslandDOFsSorted() {
		cg := i % nCG
		for r := 0; r < dof; r++ {
			queues[cg] = append(queues[cg], arbiter.Task{CG: cg, Compute: taskSec})
		}
	}
	total := 0.0
	for _, q := range queues {
		total += float64(len(q)) * taskSec
	}
	deadline := total / 64 * 1.2
	nd := arbiter.CoresForDeadline(arbiter.Dynamic, nCG, queues, deadline, 1024)
	ns := arbiter.CoresForDeadline(arbiter.Static, nCG, queues, deadline, 1024)
	ad := area.FGPoolMM2(cpu.Shader, nd)
	as := area.FGPoolMM2(cpu.Shader, ns)
	fmt.Fprintf(w, "deadline %.3f ms: dynamic needs %d shader cores (%.0f mm2), static needs %d (%.0f mm2)\n",
		deadline*1e3, nd, ad, ns, as)
	fmt.Fprintf(w, "static mapping costs %.0f%% more area\n", (as/ad-1)*100)
	d := arbiter.Simulate(arbiter.Dynamic, nCG, nd, queues)
	fmt.Fprintf(w, "dynamic utilization %.0f%%, locality %.0f%%\n",
		d.Utilization*100, d.LocalityFraction*100)
	// Arbiter queue-depth accounting for the observability snapshot:
	// exact integers from a deterministic simulation, so the metrics
	// stay thread-count invariant.
	reg := s.Metrics()
	reg.Add(reg.Counter("arch/arbiter/tasks_run"), int64(d.TasksRun))
	reg.Add(reg.Counter("arch/arbiter/queue_depth_sum"), d.QueueDepthSum)
	reg.SetGauge(reg.Gauge("arch/arbiter/max_queue_depth"), float64(d.MaxQueueDepth))
}

// Sec822: filtering small islands and cloths to hide off-chip latency.
// The paper filters islands and cloths with fewer than 50 FG tasks for
// HTX (losing an average 2% of island and 29% of cloth work) and
// islands under 1710 tasks for PCIe (losing 59%).
func (s *Suite) Sec822(w io.Writer) {
	fmt.Fprintf(w, "%-12s %20s %20s %22s\n", "Benchmark",
		"HTX isl<50: lost", "HTX cloth<50: lost", "PCIe isl<1710: lost")
	avgHTX, avgCloth, avgPCIe := 0.0, 0.0, 0.0
	n, nc := 0, 0
	for _, wl := range s.Workloads() {
		_, lost50 := wl.FilteredFGTime(cpu.Shader, 150, link.HTX, 50)
		_, lost1710 := wl.FilteredFGTime(cpu.Shader, 150, link.PCIe, 1710)
		clothLost, hasCloth := clothFilterLost(wl, 50)
		if hasCloth {
			fmt.Fprintf(w, "%-12s %19.0f%% %19.0f%% %21.0f%%\n",
				wl.Name, lost50*100, clothLost*100, lost1710*100)
			avgCloth += clothLost
			nc++
		} else {
			fmt.Fprintf(w, "%-12s %19.0f%% %19s %21.0f%%\n",
				wl.Name, lost50*100, "-", lost1710*100)
		}
		avgHTX += lost50
		avgPCIe += lost1710
		n++
	}
	fmt.Fprintf(w, "average work lost: HTX islands %.0f%%, HTX cloth %.0f%%, PCIe islands %.0f%%\n",
		avgHTX/float64(n)*100, avgCloth/float64(maxI(nc, 1))*100, avgPCIe/float64(n)*100)
}

// clothFilterLost returns the fraction of cloth vertices living in
// cloths smaller than minVerts (work that must return to CG cores when
// small cloths cannot hide the link latency).
func clothFilterLost(wl *parallax.Workload, minVerts int) (float64, bool) {
	total, kept := 0, 0
	for i := range wl.Frame.Steps {
		for _, v := range wl.Frame.Steps[i].ClothVerts {
			total += v
			if v >= minVerts {
				kept += v
			}
		}
	}
	if total == 0 {
		return 0, false
	}
	return 1 - float64(kept)/float64(total), true
}

func maxI(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// Sec83: Model 2's per-frame state transfer over PCIe.
func (s *Suite) Sec83(w io.Writer) {
	fmt.Fprintf(w, "paper example (1000 objects, 10000 particles, 5000 verts): %.5f s\n",
		parallax.PaperModel2Example())
	for _, wl := range s.Workloads() {
		fmt.Fprintf(w, "%-12s per-frame transfer %.6f s (%.2f%% of a frame)\n",
			wl.Name, wl.Model2TransferTime(), wl.Model2TransferTime()/(1.0/30)*100)
	}
}
