package exp

import (
	"fmt"
	"io"

	"github.com/parallax-arch/parallax/internal/arch/cpu"
	"github.com/parallax-arch/parallax/internal/arch/link"
	"github.com/parallax-arch/parallax/internal/arch/parallax"
	"github.com/parallax-arch/parallax/internal/phys/broadphase"
	"github.com/parallax-arch/parallax/internal/phys/geom"
	"github.com/parallax-arch/parallax/internal/phys/m3"
	"github.com/parallax-arch/parallax/internal/phys/narrowphase"
	"github.com/parallax-arch/parallax/internal/phys/workload"
	"github.com/parallax-arch/parallax/internal/phys/world"
)

// Tiny constructors keeping AblIterations readable.
func geomPlane() geom.Plane       { return geom.Plane{Normal: m3.V(0, 1, 0)} }
func m3Zero() m3.Vec              { return m3.Zero }
func qIdent() m3.Quat             { return m3.QIdent }
func boxShape(h float64) geom.Box { return geom.Box{Half: m3.V(h, h, h)} }
func vec(x, y, z float64) m3.Vec  { return m3.V(x, y, z) }

// This file holds the paper's future-work extensions and the ablation
// studies DESIGN.md calls out, beyond the tables and figures of the
// published evaluation.

// ExtPrefetch: the paper's future-work idea of reducing the L2 size
// requirement with prefetching — serial-phase time across L2 sizes with
// and without a next-4-line L2 prefetcher. The (benchmark, depth) x
// L2-size grid is simulated on the worker pool.
func (s *Suite) ExtPrefetch(w io.Writer) {
	sizes := []int{1, 2, 4, 8}
	names := []string{"Explosions", "Mix"}
	depths := []int{0, 4}
	rows := make([]struct {
		wl    *parallax.Workload
		depth int
	}, 0, len(names)*len(depths))
	for _, name := range names {
		wl := s.byName(name)
		for _, depth := range depths {
			rows = append(rows, struct {
				wl    *parallax.Workload
				depth int
			}{wl, depth})
		}
	}
	cells := grid(s, len(rows), len(sizes), func(r, c int) float64 {
		return rows[r].wl.CGFrameTime(parallax.MemConfig{
			Cores: 1, L2MB: sizes[c], Threads: 1,
			DedicatedPhase: -1, PrefetchDepth: rows[r].depth,
		}).Serial()
	})

	fmt.Fprintf(w, "%-12s %-10s", "Benchmark", "Prefetch")
	for _, mb := range sizes {
		fmt.Fprintf(w, " %7dMB", mb)
	}
	fmt.Fprintln(w)
	for i, row := range rows {
		fmt.Fprintf(w, "%-12s %-10d", row.wl.Name, row.depth)
		for j := range sizes {
			fmt.Fprintf(w, " %8.2f", cells[i][j]*1e3)
		}
		fmt.Fprintln(w, "  (ms)")
	}
	fmt.Fprintln(w, "a small L2 with prefetching approaches a larger L2 without it")
}

// ExtSharedMem: the paper's closing future-work proposal (section
// 8.2.2) — sharing local memories among clusters of FG cores to reduce
// the required communication. Reports per-core buffering and exposed
// communication for Mix's shader pool by cluster size.
func (s *Suite) ExtSharedMem(w io.Writer) {
	wl := s.byName("Mix")
	fmt.Fprintf(w, "%-9s %-9s %12s %14s %14s\n",
		"Link", "Cluster", "BufferTasks", "BufferBytes", "ExposedComm")
	for _, lk := range []link.Kind{link.HTX, link.PCIe} {
		for _, cl := range []int{1, 2, 4, 8} {
			r := wl.FGTimeSharedLocal(cpu.Shader, 150, lk, cl)
			fmt.Fprintf(w, "%-9s %-9d %12d %12d B %11.3f ms\n",
				lk, cl, r.BufferTasks, r.BufferBytes, r.CommTime*1e3)
		}
	}
	fmt.Fprintln(w, "larger clusters cut per-task input traffic, shrinking the buffering")
	fmt.Fprintln(w, "needed to hide off-chip latency")
}

// AblPartition: the L2 management ablation — partitioned vs shared L2
// at several sizes, for the serial phases and the total frame. The
// (benchmark, size) x {shared, partitioned} grid runs on the worker
// pool.
func (s *Suite) AblPartition(w io.Writer) {
	sizes := []int{3, 6, 12}
	names := []string{"Explosions", "Mix"}
	rows := make([]struct {
		wl *parallax.Workload
		mb int
	}, 0, len(names)*len(sizes))
	for _, name := range names {
		wl := s.byName(name)
		for _, mb := range sizes {
			rows = append(rows, struct {
				wl *parallax.Workload
				mb int
			}{wl, mb})
		}
	}
	cells := grid(s, len(rows), 2, func(r, c int) parallax.CGResult {
		return s.cgOnly(rows[r].wl, 4, rows[r].mb, c == 1)
	})

	fmt.Fprintf(w, "%-12s %6s %14s %14s %14s %14s\n",
		"Benchmark", "L2MB", "serial shared", "serial part.", "total shared", "total part.")
	for i, row := range rows {
		un, pt := cells[i][0], cells[i][1]
		fmt.Fprintf(w, "%-12s %6d %11.2f ms %11.2f ms %11.2f ms %11.2f ms\n",
			row.wl.Name, row.mb, un.Serial()*1e3, pt.Serial()*1e3,
			un.Total()*1e3, pt.Total()*1e3)
	}
	fmt.Fprintln(w, "partitioning trades parallel-phase capacity for serial-phase")
	fmt.Fprintln(w, "protection: the serial columns favor partitioning throughout, while")
	fmt.Fprintln(w, "the three-way split can cost the parallel phases at larger sizes")
}

// AblBroadphase: sweep-and-prune vs incremental sweep-and-prune vs
// uniform spatial hash on the actual benchmark scenes — same pairs,
// different maintenance work. The incremental variant's persistent
// pair set turns the per-step cost from a full sweep into endpoint
// fix-up (SortOps) plus occasional full rebuilds (Rebuilds) when
// coherence collapses. Each (benchmark, algorithm) cell steps its own
// freshly built world, so the cells run concurrently on the worker
// pool.
func (s *Suite) AblBroadphase(w io.Writer) {
	algos := []string{"SAP", "IncSAP", "Hash"}
	var benches []workload.Benchmark
	for _, name := range []string{"Periodic", "Explosions", "Mix"} {
		if b, ok := workload.ByName(name); ok {
			benches = append(benches, b)
		}
	}
	type cell struct {
		pairs, sortOps, overlapTests, rebuilds int
	}
	cells := grid(s, len(benches), len(algos), func(r, c int) cell {
		wd := benches[r].Build(s.Scale)
		switch algos[c] {
		case "SAP":
			wd.Broad = broadphase.NewSweepAndPrune()
		case "IncSAP":
			wd.Broad = broadphase.NewIncrementalSAP()
		default:
			wd.Broad = broadphase.NewSpatialHash()
		}
		for i := 0; i < 2*world.StepsPerFrame; i++ {
			wd.Step()
		}
		st := wd.Broad.Stats()
		return cell{wd.Profile.Pairs, st.SortOps, st.OverlapTests, st.Rebuilds}
	})

	fmt.Fprintf(w, "%-12s %-7s %9s %10s %13s %9s\n",
		"Benchmark", "Algo", "Pairs", "SortOps", "OverlapTests", "Rebuilds")
	for i, b := range benches {
		for j, algo := range algos {
			fmt.Fprintf(w, "%-12s %-7s %9d %10d %13d %9d\n",
				b.Name, algo, cells[i][j].pairs, cells[i][j].sortOps,
				cells[i][j].overlapTests, cells[i][j].rebuilds)
		}
	}
	fmt.Fprintln(w, "all algorithms agree on the candidate pairs; their spatial-structure")
	fmt.Fprintln(w, "maintenance differs, which is what makes the broad phase hard to parallelize")
}

// AblIterations: the accuracy/efficiency trade-off of section 3.1 — the
// solver iteration count against residual penetration (measured on a
// heavy box stack, the classic convergence stressor) and solver work.
// Each iteration count settles its own stack world, concurrently.
func (s *Suite) AblIterations(w io.Writer) {
	iterSweep := []int{2, 5, 10, 20, 40}
	type cell struct {
		depth   float64
		updates int
	}
	cells := make([]cell, len(iterSweep))
	s.pool(len(iterSweep), func(i int) {
		wd := world.New()
		wd.AddStatic(geomPlane(), m3Zero(), qIdent())
		for b := 0; b < 8; b++ {
			wd.AddBody(boxShape(0.5), 10, vec(0, 0.5+float64(b)*1.0, 0), qIdent(), 0, 0)
		}
		wd.Solver.Iterations = iterSweep[i]
		updates := 0
		for step := 0; step < 200; step++ {
			wd.Step()
			updates += wd.Profile.Solver.RowUpdates
		}
		// Settled penetration: worst remaining contact depth.
		var st narrowphase.Stats = wd.Profile.Narrow
		cells[i] = cell{st.DeepestDepth, updates}
	})

	fmt.Fprintf(w, "%-6s %21s %18s\n", "Iters", "settled penetration", "island row updates")
	for i, iters := range iterSweep {
		fmt.Fprintf(w, "%-6d %18.2f mm %18d\n", iters, cells[i].depth*1e3, cells[i].updates)
	}
	fmt.Fprintln(w, "the paper uses 20 iterations (the ODE guide's recommendation):")
	fmt.Fprintln(w, "fewer iterations leave deeper residual penetration in heavy stacks,")
	fmt.Fprintln(w, "more iterations multiply island-processing work linearly")
}

// AblWarmstart: persistent-manifold warm starting (an engine feature
// beyond the paper's plain iterative relaxation) against the iteration
// count — warm starting buys the accuracy of many iterations at a
// fraction of the solver work, shifting the Island Processing load the
// architecture must absorb. The iterations x {cold, warm} grid settles
// its stacks concurrently.
func (s *Suite) AblWarmstart(w io.Writer) {
	iterSweep := []int{2, 5, 10, 20}
	cells := grid(s, len(iterSweep), 2, func(r, c int) float64 {
		wd := world.New()
		wd.WarmStart = c == 1
		wd.Solver.Iterations = iterSweep[r]
		wd.AddStatic(geomPlane(), m3Zero(), qIdent())
		for i := 0; i < 8; i++ {
			wd.AddBody(boxShape(0.5), 10, vec(0, 0.5+float64(i)*1.0, 0), qIdent(), 0, 0)
		}
		for i := 0; i < 200; i++ {
			wd.Step()
		}
		return wd.Profile.Narrow.DeepestDepth
	})

	fmt.Fprintf(w, "%-6s %22s %22s\n", "Iters", "cold penetration", "warm-start penetration")
	for i, iters := range iterSweep {
		fmt.Fprintf(w, "%-6d %19.2f mm %19.2f mm\n", iters, cells[i][0]*1e3, cells[i][1]*1e3)
	}
	fmt.Fprintln(w, "warm starting approaches 20-iteration accuracy with a handful of")
	fmt.Fprintln(w, "sweeps — an engine-level lever on the FG workload size")
}

// RefSystem: the bottom line — the proposed ParallAX configuration
// (4 CG cores, 12MB partitioned L2, 150 shader-class FG cores on-chip)
// evaluated on every benchmark against the 30 FPS target. The per-
// benchmark full-system evaluations (and the 4-core CMP contrast runs)
// fan out on the worker pool.
func (s *Suite) RefSystem(w io.Writer) {
	sys := parallax.Reference()
	wls := s.Workloads()
	type row struct {
		b   parallax.Breakdown
		fps float64
	}
	rows := make([]row, len(wls))
	s.pool(len(wls), func(i int) {
		rows[i] = row{wls[i].Evaluate(sys), s.cgOnly(wls[i], 4, 12, true).FPS()}
	})

	fmt.Fprintf(w, "%-12s %11s %9s %9s %10s %8s %8s\n",
		"Benchmark", "Serial(ms)", "CG(ms)", "FG(ms)", "Total(ms)", "FPS", "30FPS?")
	pass := 0
	var area float64
	for i, wl := range wls {
		b := rows[i].b
		ok := "no"
		if b.MeetsRealTime() {
			ok = "yes"
			pass++
		}
		area = b.AreaMM2
		fmt.Fprintf(w, "%-12s %11.2f %9.2f %9.2f %10.2f %8.1f %8s\n",
			wl.Name, b.SerialTime*1e3, b.CGParallelTime*1e3, b.FGTime*1e3,
			b.Total()*1e3, b.FPS(), ok)
	}
	fmt.Fprintf(w, "%d/%d benchmarks sustain 30 FPS on %.0f mm2 at 90nm\n",
		pass, len(wls), area)
	// The same workload on the 4-core conventional CMP for contrast.
	worst := 1e18
	for i := range wls {
		if rows[i].fps < worst {
			worst = rows[i].fps
		}
	}
	fmt.Fprintf(w, "(the conventional 4-core CMP bottoms out at %.1f FPS)\n", worst)
}
