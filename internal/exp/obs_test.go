package exp

import (
	"bytes"
	"encoding/json"
	"io"
	"strings"
	"testing"
)

// obsIDs is the experiment subset of the observability tests: fig2a
// drives the CG memory simulation (memsim spans, cache counters),
// fig10b the FG model (fg-model spans, link counters) and sec721 the
// arbiter simulation (queue-depth metrics) — all on the Mix benchmark,
// so a single-benchmark suite exercises every instrumented layer.
var obsIDs = []string{"fig2a", "fig10b", "sec721"}

func obsSuite(t *testing.T, threads int) *Suite {
	t.Helper()
	s, err := NewSuiteOf(0.25, "Mix")
	if err != nil {
		t.Fatal(err)
	}
	s.Threads = threads
	if err := s.RunIDs(io.Discard, obsIDs...); err != nil {
		t.Fatal(err)
	}
	return s
}

type suiteTraceEvent struct {
	Ph   string  `json:"ph"`
	Name string  `json:"name"`
	Pid  int     `json:"pid"`
	Tid  int     `json:"tid"`
	Ts   float64 `json:"ts"`
	Dur  float64 `json:"dur"`
}

type suiteTraceDoc struct {
	DisplayTimeUnit string            `json:"displayTimeUnit"`
	TraceEvents     []suiteTraceEvent `json:"traceEvents"`
}

// TestSuiteTraceCoversRun is the acceptance-criteria trace test: a
// scale-0.25 suite run exports valid Chrome trace-event JSON whose
// spans cover all five engine phases, the architecture models, and the
// harness's own capture/experiment spans.
func TestSuiteTraceCoversRun(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	s := obsSuite(t, 4)

	var buf bytes.Buffer
	if err := s.Tracer().WriteTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var doc suiteTraceDoc
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}

	seen := map[string]bool{}
	lastTs := map[int]float64{}
	stacks := map[int][]string{}
	for _, e := range doc.TraceEvents {
		if e.Ph == "M" {
			continue
		}
		seen[e.Name] = true
		switch e.Ph {
		case "B", "E":
			// B/E events are recorded at their own timestamps, so each
			// lane's stream is nondecreasing. Complete (X) records carry
			// their start time but land in completion order — Perfetto
			// sorts by ts — so they are exempt.
			if ts, ok := lastTs[e.Tid]; ok && e.Ts < ts {
				t.Fatalf("tid %d timestamps not monotonic: %f after %f (%s)", e.Tid, e.Ts, ts, e.Name)
			}
			lastTs[e.Tid] = e.Ts
			if e.Ph == "B" {
				stacks[e.Tid] = append(stacks[e.Tid], e.Name)
				break
			}
			st := stacks[e.Tid]
			if len(st) == 0 || st[len(st)-1] != e.Name {
				t.Fatalf("tid %d: E %q does not match open span stack %v", e.Tid, e.Name, st)
			}
			stacks[e.Tid] = st[:len(st)-1]
		case "X":
			if e.Dur < 0 {
				t.Errorf("X event %q has negative duration %f", e.Name, e.Dur)
			}
		default:
			t.Errorf("unexpected event phase %q", e.Ph)
		}
	}
	for tid, st := range stacks {
		if len(st) != 0 {
			t.Errorf("tid %d exported unbalanced spans, still open: %v", tid, st)
		}
	}

	// The five engine pipeline phases, the two architecture models, and
	// the harness's own spans must all appear in one export.
	want := []string{
		"step", "broadphase", "narrowphase", "island-creation",
		"island-processing", "cloth",
		"memsim", "fg-model",
		"capture:Mix", "exp:fig2a", "exp:fig10b", "exp:sec721",
	}
	for _, name := range want {
		if !seen[name] {
			t.Errorf("trace missing span %q", name)
		}
	}
}

// TestSuiteMetricsThreadCountDeterminism pins satellite (d): the
// metrics snapshot of a run — engine counters, cache/link/arbiter
// model counters, harness memo and pool counters — is byte-identical
// whatever the harness thread count is.
func TestSuiteMetricsThreadCountDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	snap := func(threads int) string {
		return obsSuite(t, threads).Metrics().Snapshot()
	}
	serial := snap(1)
	parallel := snap(8)
	if serial != parallel {
		t.Fatalf("metrics snapshot differs across thread counts:\n--- threads=1 ---\n%s\n--- threads=8 ---\n%s",
			serial, parallel)
	}
	for _, name := range []string{
		"counter engine/steps",
		"counter arch/cache/l1_hits",
		"counter arch/link/compute_ns",
		"counter arch/arbiter/tasks_run",
		"gauge arch/arbiter/max_queue_depth",
		"counter harness/pool_tasks",
		"counter harness/cg_requests",
		"hist engine/island_dof",
	} {
		if !strings.Contains(serial, name) {
			t.Errorf("snapshot missing %q:\n%s", name, serial)
		}
	}
}
