// Package exp reproduces every table and figure of the paper's
// evaluation. Each experiment captures the benchmark workloads it needs
// (running the real physics engine), drives the architecture models,
// and prints the same rows/series the paper reports.
//
// The harness is parallel but deterministic: captures run concurrently
// (one goroutine per benchmark, forced lazily on first use), model
// evaluations fan out on a bounded worker pool writing into
// index-addressed slices, and independent experiments render into
// private buffers merged to the output in Registry order — so the
// bytes printed are identical to a serial (Threads=1) run, except for
// the "# timing:" lines, which report wall-clock and are excluded from
// determinism comparisons (see StripTimings).
package exp

import (
	"bytes"
	"fmt"
	"io"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"github.com/parallax-arch/parallax/internal/arch/parallax"
	"github.com/parallax-arch/parallax/internal/obs"
	"github.com/parallax-arch/parallax/internal/phys/broadphase"
	"github.com/parallax-arch/parallax/internal/phys/workload"
)

// Suite holds the (lazily captured) workloads for the selected
// benchmarks.
type Suite struct {
	// Scale is the workload scale factor (1.0 = the paper's scene
	// sizes).
	Scale float64
	// Threads bounds the evaluation worker pool and the number of
	// concurrently running experiments. <= 0 means GOMAXPROCS.
	// Threads=1 reproduces the fully serial harness.
	Threads int
	// Broad, when non-nil, is called once per captured world to replace
	// its broad-phase implementation before simulation (paraxbench's
	// -broad flag). Each capture gets its own instance — the sweep
	// structures carry cross-step state and must not be shared between
	// worlds. Nil keeps each benchmark's default.
	Broad func() broadphase.Interface

	// entries are the suite's benchmarks in paper order; each captures
	// its workload at most once, on first use.
	entries []*suiteEntry

	// captureNanos accumulates per-benchmark capture CPU time.
	captureNanos atomic.Int64
	captured     atomic.Int64

	// cgCache memoizes CG-machine evaluations with singleflight
	// deduplication: concurrent requests for the same point block on
	// one computation instead of repeating it.
	cgMu    sync.Mutex
	cgCache map[cgKey]*cgOnce

	// Observability (lazily initialized): one tracer and one metrics
	// registry shared by the harness, every captured engine world, and
	// the architecture models, so a single export shows the whole run.
	// The harness's own spans — per-benchmark captures, per-experiment
	// runs — go to a shared lane as Complete records (they finish on
	// whatever pool worker ran them), and those spans are the single
	// timing source behind both the trace export and the "# timing:"
	// output lines.
	obsOnce    sync.Once
	trace      *obs.Tracer
	metrics    *obs.Registry
	hLane      *obs.Lane
	poolTasks  obs.CounterID
	cgRequests obs.CounterID
	cgComputed obs.CounterID
}

type suiteEntry struct {
	bench workload.Benchmark
	once  sync.Once
	wl    *parallax.Workload
}

type cgKey struct {
	name        string
	cores, l2MB int
	part        bool
}

type cgOnce struct {
	once sync.Once
	res  parallax.CGResult
}

// Names lists the benchmarks in paper order.
func Names() []string {
	var out []string
	for _, b := range workload.All {
		out = append(out, b.Name)
	}
	return out
}

// NewSuite prepares every benchmark at the given scale. Capture is
// lazy: a world is built and simulated (one warm frame, three measured;
// the paper measures frames 5-7 with peak activity arranged to fall in
// the measured window) only when an experiment first asks for the
// workload, and Workloads forces all pending captures concurrently.
func NewSuite(scale float64) *Suite {
	s := newSuite(scale)
	for _, b := range workload.All {
		s.entries = append(s.entries, &suiteEntry{bench: b})
	}
	return s
}

// NewSuiteOf prepares only the named benchmarks (used by focused
// experiments and tests). Unknown names are an error listing the valid
// benchmarks.
func NewSuiteOf(scale float64, names ...string) (*Suite, error) {
	s := newSuite(scale)
	for _, n := range names {
		b, ok := workload.ByName(n)
		if !ok {
			return nil, fmt.Errorf("exp: unknown benchmark %q (valid: %s)",
				n, strings.Join(Names(), ", "))
		}
		s.entries = append(s.entries, &suiteEntry{bench: b})
	}
	return s, nil
}

func newSuite(scale float64) *Suite {
	return &Suite{Scale: scale, cgCache: make(map[cgKey]*cgOnce)}
}

// obsInit creates the suite's shared observability sinks.
func (s *Suite) obsInit() {
	s.obsOnce.Do(func() {
		s.trace = obs.NewTracer()
		s.metrics = obs.NewRegistry()
		s.hLane = s.trace.Lane("harness", 2048)
		s.poolTasks = s.metrics.Counter("harness/pool_tasks")
		s.cgRequests = s.metrics.Counter("harness/cg_requests")
		s.cgComputed = s.metrics.Counter("harness/cg_computed")
	})
}

// Tracer returns the suite's span tracer: harness capture/experiment
// spans, every captured world's engine phase spans, and the arch-model
// spans all land here. Export with Tracer().WriteTrace.
func (s *Suite) Tracer() *obs.Tracer {
	s.obsInit()
	return s.trace
}

// Metrics returns the suite's metrics registry. Every value in it is a
// commutative integer aggregate of deterministic per-call values, so
// Metrics().Snapshot() is byte-identical whatever Threads is.
func (s *Suite) Metrics() *obs.Registry {
	s.obsInit()
	return s.metrics
}

// harnessLane returns the shared lane carrying capture/experiment spans.
func (s *Suite) harnessLane() *obs.Lane {
	s.obsInit()
	return s.hLane
}

// threads returns the effective worker-pool width.
func (s *Suite) threads() int {
	if s.Threads > 0 {
		return s.Threads
	}
	return runtime.GOMAXPROCS(0)
}

// capture forces one entry's workload. The captured world and the
// resulting workload's architecture models are wired to the suite's
// shared tracer and registry, and the whole capture is one span whose
// duration also feeds CaptureStats — wall-clock reaches only span
// timestamps and "# timing:" diagnostics, both of which StripTimings
// and the snapshot exclude from determinism comparisons.
func (s *Suite) capture(e *suiteEntry) *parallax.Workload {
	e.once.Do(func() {
		tr := s.Tracer()
		start := tr.Now()
		w := e.bench.Build(s.Scale)
		if s.Broad != nil {
			w.Broad = s.Broad()
		}
		w.SetObs(tr, s.Metrics(), "engine/"+e.bench.Name)
		e.wl = parallax.Capture(e.bench.Name, w, 1, 3)
		e.wl.SetObs(tr, s.Metrics(), "arch/"+e.bench.Name)
		s.captureNanos.Add(s.harnessLane().Complete(tr.Span("capture:"+e.bench.Name), start))
		s.captured.Add(1)
	})
	return e.wl
}

// Workloads forces every pending capture — concurrently, one goroutine
// per benchmark, since the worlds are independent — and returns the
// workloads in paper order.
func (s *Suite) Workloads() []*parallax.Workload {
	out := make([]*parallax.Workload, len(s.entries))
	var wg sync.WaitGroup
	for i, e := range s.entries {
		wg.Add(1)
		go func(i int, e *suiteEntry) {
			defer wg.Done()
			out[i] = s.capture(e)
		}(i, e)
	}
	wg.Wait()
	return out
}

// NumBenchmarks returns the number of benchmarks in the suite without
// forcing any capture.
func (s *Suite) NumBenchmarks() int { return len(s.entries) }

// BenchNames returns the suite's benchmark names in order without
// forcing any capture.
func (s *Suite) BenchNames() []string {
	out := make([]string, len(s.entries))
	for i, e := range s.entries {
		out[i] = e.bench.Name
	}
	return out
}

// CaptureStats reports how many benchmarks have been captured so far
// and the cumulative per-benchmark capture time (CPU-side sum; with
// concurrent capture the wall-clock is lower).
func (s *Suite) CaptureStats() (n int, total time.Duration) {
	return int(s.captured.Load()), time.Duration(s.captureNanos.Load())
}

// byName finds (capturing if needed) a workload. A name outside the
// suite is a harness bug or a mis-restricted -bench flag and fails
// loudly rather than returning a stand-in workload.
func (s *Suite) byName(name string) *parallax.Workload {
	for _, e := range s.entries {
		if e.bench.Name == name {
			return s.capture(e)
		}
	}
	panic(fmt.Sprintf("exp: benchmark %q not in suite (have: %s)",
		name, strings.Join(s.BenchNames(), ", ")))
}

// cgOnly memoizes CG-machine evaluations, which several figures share.
// Concurrency-safe with singleflight semantics: each (workload, cores,
// l2MB, partitioned) point is computed exactly once even when many
// experiment goroutines request it at the same time.
func (s *Suite) cgOnly(wl *parallax.Workload, cores, l2MB int, part bool) parallax.CGResult {
	// Memo hit rate = 1 - cg_computed/cg_requests. Both counts are
	// deterministic under singleflight: requests is the fixed number of
	// call sites executed, computed is the number of unique keys.
	s.Metrics().Add(s.cgRequests, 1)
	key := cgKey{wl.Name, cores, l2MB, part}
	s.cgMu.Lock()
	c, ok := s.cgCache[key]
	if !ok {
		c = &cgOnce{}
		s.cgCache[key] = c
	}
	s.cgMu.Unlock()
	c.once.Do(func() {
		s.metrics.Add(s.cgComputed, 1)
		c.res = wl.CGOnly(cores, l2MB, part)
	})
	return c.res
}

// pool runs fn(0..n-1) on at most s.threads() workers and waits for all
// of them. Callers write results into index-addressed slices so the
// rendered output is independent of scheduling order.
func (s *Suite) pool(n int, fn func(i int)) {
	s.Metrics().Add(s.poolTasks, int64(n))
	t := s.threads()
	if t > n {
		t = n
	}
	if t <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < t; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}

// grid runs fn over an rows x cols index grid on the worker pool and
// returns the results as [row][col] — the shape of most sweep tables.
func grid[T any](s *Suite, rows, cols int, fn func(r, c int) T) [][]T {
	out := make([][]T, rows)
	for r := range out {
		out[r] = make([]T, cols)
	}
	s.pool(rows*cols, func(i int) {
		r, c := i/cols, i%cols
		out[r][c] = fn(r, c)
	})
	return out
}

// Experiment is one runnable table/figure reproduction.
type Experiment struct {
	ID    string
	Title string
	Run   func(s *Suite, w io.Writer)
}

// Registry lists all experiments in paper order.
var Registry = []Experiment{
	{"table3", "Table 3: average instructions per frame", (*Suite).Table3},
	{"table4", "Table 4: benchmark specs", (*Suite).Table4},
	{"fig2a", "Fig 2a: 1-core + 1MB L2 execution-time breakdown", (*Suite).Fig2a},
	{"fig2b", "Fig 2b: serial phases vs shared L2 size", (*Suite).Fig2b},
	{"fig3a", "Fig 3a: Broadphase with dedicated L2", (*Suite).Fig3a},
	{"fig3b", "Fig 3b: Narrowphase with dedicated L2", (*Suite).Fig3b},
	{"fig4a", "Fig 4a: Island Creation with dedicated L2", (*Suite).Fig4a},
	{"fig4b", "Fig 4b: Island Processing with dedicated L2", (*Suite).Fig4b},
	{"fig5a", "Fig 5a: Cloth with dedicated L2", (*Suite).Fig5a},
	{"fig5b", "Fig 5b: performance with processor scaling", (*Suite).Fig5b},
	{"fig6a", "Fig 6a: 4-core + 12MB execution-time breakdown", (*Suite).Fig6a},
	{"fig6b", "Fig 6b: L2 miss breakdown with thread scaling", (*Suite).Fig6b},
	{"fig7a", "Fig 7a: limit of coarse-grain parallelism", (*Suite).Fig7a},
	{"fig7b", "Fig 7b: instruction mix for all 5 phases", (*Suite).Fig7b},
	{"fig9a", "Fig 9a: coarse-grain vs fine-grain execution time", (*Suite).Fig9a},
	{"fig9b", "Fig 9b: instruction mix of fine-grain kernels", (*Suite).Fig9b},
	{"fig10a", "Fig 10a: IPC of fine-grain core types", (*Suite).Fig10a},
	{"fig10b", "Fig 10b: fine-grain cores required for 30 FPS", (*Suite).Fig10b},
	{"table7", "Table 7: FG tasks required to hide communication", (*Suite).Table7},
	{"fig11", "Fig 11: available fine-grain parallel tasks", (*Suite).Fig11},
	{"sec721", "Sec 7.1/8.2.1: dynamic vs static FG mapping", (*Suite).Sec721},
	{"sec822", "Sec 8.2.2: filtering small islands/cloths", (*Suite).Sec822},
	{"sec83", "Sec 8.3: Model 2 per-frame transfer", (*Suite).Sec83},
	// Future-work extensions and ablations beyond the published figures.
	{"ext-prefetch", "Extension: L2 prefetching (future work, sec 6.2)", (*Suite).ExtPrefetch},
	{"ext-sharedmem", "Extension: shared FG local memories (future work, sec 8.2.2)", (*Suite).ExtSharedMem},
	{"abl-partition", "Ablation: partitioned vs shared L2", (*Suite).AblPartition},
	{"abl-broadphase", "Ablation: sweep-and-prune vs incremental SAP vs spatial hash", (*Suite).AblBroadphase},
	{"abl-iterations", "Ablation: solver iteration count", (*Suite).AblIterations},
	{"abl-warmstart", "Ablation: contact warm starting vs iteration count", (*Suite).AblWarmstart},
	{"ref-system", "Bottom line: the proposed ParallAX system vs 30 FPS", (*Suite).RefSystem},
}

// IDs returns the experiment ids in order.
func IDs() []string {
	out := make([]string, len(Registry))
	for i, e := range Registry {
		out[i] = e.ID
	}
	return out
}

// ByID finds an experiment.
func ByID(id string) (Experiment, bool) {
	for _, e := range Registry {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// TimingPrefix marks harness timing lines in the output. They carry
// wall-clock measurements and are the only nondeterministic lines the
// harness emits; StripTimings removes them for output comparison.
const TimingPrefix = "# timing:"

// StripTimings removes "# timing:" lines, leaving the deterministic
// experiment sections.
func StripTimings(out string) string {
	lines := strings.Split(out, "\n")
	kept := lines[:0]
	for _, l := range lines {
		if !strings.HasPrefix(l, TimingPrefix) {
			kept = append(kept, l)
		}
	}
	return strings.Join(kept, "\n")
}

// RunAll executes every experiment, concurrently up to Threads, and
// merges the sections to w in Registry order.
func (s *Suite) RunAll(w io.Writer) {
	s.run(w, Registry)
}

// RunIDs executes the named experiments (concurrently up to Threads),
// merging output in the order given. Unknown ids are an error listing
// the valid ids.
func (s *Suite) RunIDs(w io.Writer, ids ...string) error {
	exps := make([]Experiment, len(ids))
	for i, id := range ids {
		e, ok := ByID(id)
		if !ok {
			return fmt.Errorf("exp: unknown experiment %q (valid: %s)",
				id, strings.Join(IDs(), ", "))
		}
		exps[i] = e
	}
	s.run(w, exps)
	return nil
}

// run renders each experiment into its own buffer on the worker pool,
// then writes the buffers in order with a per-experiment "# timing:"
// line. The sections' bytes are identical whatever Threads is; only the
// timing lines vary run to run. Each experiment is one "exp:<id>" span
// on the harness lane; the span's measured duration is also what the
// timing line prints, so the trace export and the text output share one
// source of truth.
func (s *Suite) run(w io.Writer, exps []Experiment) {
	bufs := make([]bytes.Buffer, len(exps))
	durs := make([]int64, len(exps))
	s.pool(len(exps), func(i int) {
		tr := s.Tracer()
		start := tr.Now()
		e := exps[i]
		fmt.Fprintf(&bufs[i], "==== %s — %s ====\n", e.ID, e.Title)
		e.Run(s, &bufs[i])
		durs[i] = s.harnessLane().Complete(tr.Span("exp:"+e.ID), start)
	})
	for i, e := range exps {
		w.Write(bufs[i].Bytes())
		fmt.Fprintf(w, "%s exp=%s wall=%s\n\n", TimingPrefix, e.ID,
			time.Duration(durs[i]).Round(time.Microsecond))
	}
}
