// Package exp reproduces every table and figure of the paper's
// evaluation. Each experiment captures the benchmark workloads once
// (running the real physics engine), drives the architecture models,
// and prints the same rows/series the paper reports.
package exp

import (
	"fmt"
	"io"

	"github.com/parallax-arch/parallax/internal/arch/parallax"
	"github.com/parallax-arch/parallax/internal/phys/workload"
)

// Suite holds the captured workloads for all eight benchmarks.
type Suite struct {
	// Scale is the workload scale factor (1.0 = the paper's scene
	// sizes).
	Scale float64
	// Workloads in the paper's benchmark order.
	Workloads []*parallax.Workload

	cgCache map[string]parallax.CGResult
}

// Names lists the benchmarks in paper order.
func Names() []string {
	var out []string
	for _, b := range workload.All {
		out = append(out, b.Name)
	}
	return out
}

// NewSuite builds and captures every benchmark at the given scale,
// warming one frame and measuring three (the paper measures frames 5-7;
// the scenes here are arranged so peak activity falls in the measured
// window).
func NewSuite(scale float64) *Suite {
	s := &Suite{Scale: scale, cgCache: make(map[string]parallax.CGResult)}
	for _, b := range workload.All {
		w := b.Build(scale)
		s.Workloads = append(s.Workloads, parallax.Capture(b.Name, w, 1, 3))
	}
	return s
}

// NewSuiteOf captures only the named benchmarks (used by focused
// experiments and tests).
func NewSuiteOf(scale float64, names ...string) *Suite {
	s := &Suite{Scale: scale, cgCache: make(map[string]parallax.CGResult)}
	for _, n := range names {
		b, ok := workload.ByName(n)
		if !ok {
			continue
		}
		s.Workloads = append(s.Workloads, parallax.Capture(b.Name, b.Build(scale), 1, 3))
	}
	return s
}

// byName finds a captured workload.
func (s *Suite) byName(name string) *parallax.Workload {
	for _, wl := range s.Workloads {
		if wl.Name == name {
			return wl
		}
	}
	if len(s.Workloads) > 0 {
		return s.Workloads[len(s.Workloads)-1]
	}
	return nil
}

// cgOnly memoizes CG-machine evaluations, which several figures share.
func (s *Suite) cgOnly(wl *parallax.Workload, cores, l2MB int, part bool) parallax.CGResult {
	key := fmt.Sprintf("%s/%d/%d/%v", wl.Name, cores, l2MB, part)
	if r, ok := s.cgCache[key]; ok {
		return r
	}
	r := wl.CGOnly(cores, l2MB, part)
	s.cgCache[key] = r
	return r
}

// Experiment is one runnable table/figure reproduction.
type Experiment struct {
	ID    string
	Title string
	Run   func(s *Suite, w io.Writer)
}

// Registry lists all experiments in paper order.
var Registry = []Experiment{
	{"table3", "Table 3: average instructions per frame", (*Suite).Table3},
	{"table4", "Table 4: benchmark specs", (*Suite).Table4},
	{"fig2a", "Fig 2a: 1-core + 1MB L2 execution-time breakdown", (*Suite).Fig2a},
	{"fig2b", "Fig 2b: serial phases vs shared L2 size", (*Suite).Fig2b},
	{"fig3a", "Fig 3a: Broadphase with dedicated L2", (*Suite).Fig3a},
	{"fig3b", "Fig 3b: Narrowphase with dedicated L2", (*Suite).Fig3b},
	{"fig4a", "Fig 4a: Island Creation with dedicated L2", (*Suite).Fig4a},
	{"fig4b", "Fig 4b: Island Processing with dedicated L2", (*Suite).Fig4b},
	{"fig5a", "Fig 5a: Cloth with dedicated L2", (*Suite).Fig5a},
	{"fig5b", "Fig 5b: performance with processor scaling", (*Suite).Fig5b},
	{"fig6a", "Fig 6a: 4-core + 12MB execution-time breakdown", (*Suite).Fig6a},
	{"fig6b", "Fig 6b: L2 miss breakdown with thread scaling", (*Suite).Fig6b},
	{"fig7a", "Fig 7a: limit of coarse-grain parallelism", (*Suite).Fig7a},
	{"fig7b", "Fig 7b: instruction mix for all 5 phases", (*Suite).Fig7b},
	{"fig9a", "Fig 9a: coarse-grain vs fine-grain execution time", (*Suite).Fig9a},
	{"fig9b", "Fig 9b: instruction mix of fine-grain kernels", (*Suite).Fig9b},
	{"fig10a", "Fig 10a: IPC of fine-grain core types", (*Suite).Fig10a},
	{"fig10b", "Fig 10b: fine-grain cores required for 30 FPS", (*Suite).Fig10b},
	{"table7", "Table 7: FG tasks required to hide communication", (*Suite).Table7},
	{"fig11", "Fig 11: available fine-grain parallel tasks", (*Suite).Fig11},
	{"sec721", "Sec 7.1/8.2.1: dynamic vs static FG mapping", (*Suite).Sec721},
	{"sec822", "Sec 8.2.2: filtering small islands/cloths", (*Suite).Sec822},
	{"sec83", "Sec 8.3: Model 2 per-frame transfer", (*Suite).Sec83},
	// Future-work extensions and ablations beyond the published figures.
	{"ext-prefetch", "Extension: L2 prefetching (future work, sec 6.2)", (*Suite).ExtPrefetch},
	{"ext-sharedmem", "Extension: shared FG local memories (future work, sec 8.2.2)", (*Suite).ExtSharedMem},
	{"abl-partition", "Ablation: partitioned vs shared L2", (*Suite).AblPartition},
	{"abl-broadphase", "Ablation: sweep-and-prune vs spatial hash", (*Suite).AblBroadphase},
	{"abl-iterations", "Ablation: solver iteration count", (*Suite).AblIterations},
	{"abl-warmstart", "Ablation: contact warm starting vs iteration count", (*Suite).AblWarmstart},
	{"ref-system", "Bottom line: the proposed ParallAX system vs 30 FPS", (*Suite).RefSystem},
}

// IDs returns the experiment ids in order.
func IDs() []string {
	out := make([]string, len(Registry))
	for i, e := range Registry {
		out[i] = e.ID
	}
	return out
}

// ByID finds an experiment.
func ByID(id string) (Experiment, bool) {
	for _, e := range Registry {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// RunAll executes every experiment in order.
func (s *Suite) RunAll(w io.Writer) {
	for _, e := range Registry {
		fmt.Fprintf(w, "==== %s — %s ====\n", e.ID, e.Title)
		e.Run(s, w)
		fmt.Fprintln(w)
	}
}
